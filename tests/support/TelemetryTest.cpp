//===- TelemetryTest.cpp - Flight recorder + histogram battery -------------===//
///
/// Pins the telemetry layer's contracts:
///
///   - bucket math (bucketForValue / bucketLowerBound are inverses,
///     zeros and saturation handled);
///   - the enable gate (nothing records while disabled; reset zeroes
///     everything);
///   - ring geometry (setRingEvents validation, wraparound keeps the
///     newest ring-size events and never loses the totals);
///   - concurrent record/dump/reset (the per-slot seqlock makes the
///     dump safe against live writers — the TSan job runs this file);
///   - overflow-ring assignment once kNumRings threads exist;
///   - a fork child can dump a valid trace after the atfork quiesce
///     (the paper-motivated redis-style fork persistence scenario).
///
/// Telemetry state is process-global, so every test runs under a guard
/// that disables + resets on entry and exit; this battery is its own
/// binary (mesh_telemetry_tests) so it never interleaves with other
/// suites.
///
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include "TestConfig.h"
#include "core/Runtime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

namespace mesh {
namespace telemetry {
namespace {

/// Disabled + zeroed + default geometry on entry and exit, so a
/// failing test cannot leak recorder state into its neighbors.
struct TelemetryGuard {
  TelemetryGuard() { scrub(); }
  ~TelemetryGuard() { scrub(); }
  static void scrub() {
    disable();
    setRingEvents(kDefaultRingEvents);
    reset();
  }
};

std::string slurp(const std::string &Path) {
  FILE *F = fopen(Path.c_str(), "r");
  if (F == nullptr)
    return "";
  std::string Out;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  fclose(F);
  return Out;
}

size_t countOccurrences(const std::string &Hay, const std::string &Needle) {
  size_t Count = 0;
  for (size_t Pos = Hay.find(Needle); Pos != std::string::npos;
       Pos = Hay.find(Needle, Pos + Needle.size()))
    ++Count;
  return Count;
}

std::string tempTracePath(const char *Tag) {
  return "/tmp/mesh-telemetry-test-" + std::to_string(getpid()) + "-" +
         Tag + ".json";
}

TEST(TelemetryBuckets, ValueToBucketAndBack) {
  EXPECT_EQ(bucketForValue(0), 0u);
  EXPECT_EQ(bucketForValue(1), 1u);
  EXPECT_EQ(bucketForValue(2), 2u);
  EXPECT_EQ(bucketForValue(3), 2u);
  EXPECT_EQ(bucketForValue(4), 3u);
  // Every power of two opens its own bucket; the value one below it
  // closes the previous one.
  for (uint32_t K = 1; K < 62; ++K) {
    const uint64_t V = UINT64_C(1) << K;
    EXPECT_EQ(bucketForValue(V), K + 1) << "v=2^" << K;
    EXPECT_EQ(bucketForValue(V - 1), K) << "v=2^" << K << "-1";
  }
  // The top bucket saturates.
  EXPECT_EQ(bucketForValue(~UINT64_C(0)), kHistBuckets - 1);
  EXPECT_EQ(bucketForValue(UINT64_C(1) << 63), kHistBuckets - 1);
  // Lower bounds invert bucketForValue: every bucket's lower bound
  // maps back into that bucket, and one less maps below it.
  EXPECT_EQ(bucketLowerBound(0), 0u);
  for (uint32_t B = 1; B < kHistBuckets - 1; ++B) {
    EXPECT_EQ(bucketForValue(bucketLowerBound(B)), B);
    EXPECT_LT(bucketForValue(bucketLowerBound(B) - 1), B);
  }
}

TEST(TelemetryGate, DisabledRecordsNothing) {
  TelemetryGuard Guard;
  ASSERT_FALSE(enabled());
  event(EventType::kBgWake, 0, 1);
  histRecord(kHistMeshPass, 12345);
  EXPECT_EQ(eventsRecorded(), 0u);
  uint64_t Buckets[kHistBuckets];
  readHistogram(kHistMeshPass, Buckets);
  for (uint32_t B = 0; B < kHistBuckets; ++B)
    EXPECT_EQ(Buckets[B], 0u) << "bucket " << B;
  // An unarmed Timer never reads the clock and reports zero.
  Timer T;
  EXPECT_FALSE(T.armed());
  EXPECT_EQ(T.elapsedNs(), 0u);
}

TEST(TelemetryGate, EnableRecordResetRoundTrip) {
  TelemetryGuard Guard;
  enable();
  ASSERT_TRUE(enabled());
  event(EventType::kDirtyTrip, 3, 4096);
  histRecord(kHistSpanAcquire, 1000); // bucket 10: [512, 1024)
  EXPECT_GE(eventsRecorded(), 1u);
  EXPECT_GE(ringsInUse(), 1u);
  uint64_t Buckets[kHistBuckets];
  readHistogram(kHistSpanAcquire, Buckets);
  EXPECT_EQ(Buckets[bucketForValue(1000)], 1u);
  Timer T;
  EXPECT_TRUE(T.armed());
  reset();
  EXPECT_EQ(eventsRecorded(), 0u);
  EXPECT_EQ(overflowEvents(), 0u);
  readHistogram(kHistSpanAcquire, Buckets);
  EXPECT_EQ(Buckets[bucketForValue(1000)], 0u);
}

TEST(TelemetryRing, SetRingEventsValidation) {
  TelemetryGuard Guard;
  // Not a power of two, below the floor, above the ceiling: rejected.
  EXPECT_FALSE(setRingEvents(kDefaultRingEvents - 1));
  EXPECT_FALSE(setRingEvents(kMinRingEvents / 2));
  EXPECT_FALSE(setRingEvents(kMaxRingEvents * 2));
  EXPECT_EQ(ringEvents(), kDefaultRingEvents);
  // Valid while disabled.
  EXPECT_TRUE(setRingEvents(kMinRingEvents));
  EXPECT_EQ(ringEvents(), kMinRingEvents);
  // Rejected while recording is live.
  enable();
  EXPECT_FALSE(setRingEvents(kDefaultRingEvents));
  EXPECT_EQ(ringEvents(), kMinRingEvents);
  disable();
  EXPECT_TRUE(setRingEvents(kDefaultRingEvents));
}

TEST(TelemetryRing, WraparoundKeepsNewestAndCountsAll) {
  TelemetryGuard Guard;
  ASSERT_TRUE(setRingEvents(kMinRingEvents));
  enable();
  const uint64_t Total = kMinRingEvents * 4;
  for (uint64_t I = 0; I < Total; ++I)
    event(EventType::kBgWake, 0, I);
  EXPECT_EQ(eventsRecorded(), Total);

  const std::string Path = tempTracePath("wrap");
  ASSERT_EQ(dumpTrace(Path.c_str()), 0);
  const std::string Trace = slurp(Path);
  unlink(Path.c_str());
  ASSERT_FALSE(Trace.empty());
  // The ring kept exactly the newest kMinRingEvents events: one
  // trace-event line each, plus the one sidecar per-type counter key.
  EXPECT_EQ(countOccurrences(Trace, "\"bg_wake\""), kMinRingEvents + 1);
  // The newest payload survived the wrap; the oldest was overwritten.
  EXPECT_NE(Trace.find("\"payload\":" + std::to_string(Total - 1) + "}"),
            std::string::npos);
  EXPECT_EQ(Trace.find("\"payload\":0}"), std::string::npos);
}

TEST(TelemetryRing, OverflowRingBeyondExclusiveCapacity) {
  TelemetryGuard Guard;
  enable();
  // More threads than exclusive rings: the surplus shares the overflow
  // ring and is counted separately. Each thread records exactly once.
  // Ring assignment is sticky for the life of a thread, so rings
  // already handed out to this test binary's earlier threads reduce
  // the exclusive pool available here.
  const uint64_t RingsBefore = ringsInUse();
  const uint32_t Threads = kNumRings + 8;
  std::vector<std::thread> Pool;
  for (uint32_t I = 0; I < Threads; ++I)
    Pool.emplace_back(
        [I] { event(EventType::kEpochSync, 0, 1000 + I); });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(eventsRecorded(), Threads);
  EXPECT_EQ(ringsInUse(), kNumRings);
  EXPECT_EQ(overflowEvents(), Threads - (kNumRings - RingsBefore));
}

TEST(TelemetryConcurrency, RecordDumpResetRace) {
  TelemetryGuard Guard;
  enable();
  const std::string Path = tempTracePath("race");
  std::atomic<bool> Stop{false};
  const size_t Iters = stressScaled(20000);

  std::vector<std::thread> Writers;
  for (int W = 0; W < 4; ++W)
    Writers.emplace_back([W, Iters] {
      for (size_t I = 0; I < Iters; ++I) {
        event(EventType::kMeshRemap, static_cast<uint16_t>(W), I);
        histRecord(kHistMeshRemap, I % 4096);
      }
    });
  // The dumper snapshots while writers are live; every dump must
  // succeed and the seqlock must keep torn slots out (TSan enforces
  // the memory-order side of this).
  std::thread Dumper([&] {
    int Round = 0;
    while (!Stop.load(std::memory_order_acquire)) {
      ASSERT_EQ(dumpTrace(Path.c_str()), 0);
      if (++Round % 8 == 0)
        reset();
    }
  });
  for (std::thread &W : Writers)
    W.join();
  Stop.store(true, std::memory_order_release);
  Dumper.join();

  ASSERT_EQ(dumpTrace(Path.c_str()), 0);
  const std::string Trace = slurp(Path);
  unlink(Path.c_str());
  ASSERT_FALSE(Trace.empty());
  EXPECT_EQ(Trace.front(), '{');
  EXPECT_EQ(Trace.back(), '\n');
  EXPECT_NE(Trace.find("\"meshTelemetry\""), std::string::npos);
}

TEST(TelemetryFork, ChildDumpsValidTraceAfterQuiesce) {
  TelemetryGuard Guard;
  const std::string Path = tempTracePath("fork-child");
  unlink(Path.c_str());
  {
    // A real Runtime wires the atfork protocol (quiesce + resume),
    // which is what stamps the kForkQuiesce events around the window.
    Runtime R(testOptions());
    enable();
    void *P = R.malloc(64);
    ASSERT_NE(P, nullptr);
    R.meshNow();

    const pid_t Pid = fork();
    ASSERT_GE(Pid, 0);
    if (Pid == 0) {
      // Child: single-threaded by construction; the dump must work
      // here (lock-free recorder) and must carry the child-resume
      // event the atfork hook just recorded.
      const int Rc = dumpTrace(Path.c_str());
      _exit(Rc == 0 ? 0 : 42);
    }
    int Status = 0;
    ASSERT_EQ(waitpid(Pid, &Status, 0), Pid);
    ASSERT_TRUE(WIFEXITED(Status));
    ASSERT_EQ(WEXITSTATUS(Status), 0);
    R.free(P);
  }
  const std::string Trace = slurp(Path);
  unlink(Path.c_str());
  ASSERT_FALSE(Trace.empty());
  EXPECT_EQ(Trace.front(), '{');
  EXPECT_NE(Trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Trace.find("\"meshTelemetry\""), std::string::npos);
  // Quiesce window: prepare in the parent pre-fork, child resume in
  // the child — both visible in the child's inherited rings.
  EXPECT_NE(Trace.find("\"fork_quiesce\""), std::string::npos);
  EXPECT_GE(countOccurrences(Trace, "\"fork_quiesce\""), 2u + 1u);
}

TEST(TelemetryDump, NamesTablesMatchToolExpectations) {
  // tools/mesh-top.py hard-codes these taxonomies; a drift here is a
  // schema break even if the JSON stays well-formed.
  const char *Events[] = {"mesh_pass",   "mesh_scan",  "mesh_remap",
                          "mesh_release", "bg_wake",    "epoch_sync",
                          "dirty_trip",  "fault_retry", "fault_degrade",
                          "fork_quiesce"};
  for (uint16_t T = 0;
       T < static_cast<uint16_t>(EventType::kNumEventTypes); ++T)
    EXPECT_STREQ(eventTypeName(static_cast<EventType>(T)), Events[T]);
  const char *Hists[] = {"mesh_pass",  "mesh_scan",     "mesh_remap",
                         "mesh_release", "epoch_sync", "span_acquire",
                         "punch_syscall", "remap_syscall"};
  for (uint16_t H = 0; H < kNumHists; ++H) {
    EXPECT_STREQ(histName(static_cast<HistId>(H)), Hists[H]);
    EXPECT_EQ(histIdByName(Hists[H]), H);
  }
  EXPECT_EQ(histIdByName("not_a_histogram"), -1);
}

} // namespace
} // namespace telemetry
} // namespace mesh
