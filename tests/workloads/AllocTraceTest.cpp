//===- AllocTraceTest.cpp - Trace record/replay tests ----------------------===//

#include "workloads/AllocTrace.h"

#include "baseline/FreeListAllocator.h"
#include "baseline/SizeClassAllocator.h"

#include <gtest/gtest.h>

namespace mesh {
namespace {

MeshOptions traceMeshOptions() {
  MeshOptions Opts;
  Opts.ArenaBytes = size_t{1} << 30;
  Opts.MeshPeriodMs = 0; // mesh on every tick
  Opts.MaxDirtyBytes = 0;
  Opts.Seed = 99;
  return Opts;
}

TEST(AllocTraceTest, RecordAndValidate) {
  AllocTrace Trace;
  Trace.recordMalloc(0, 64);
  Trace.recordMalloc(1, 128);
  Trace.recordFree(0);
  EXPECT_TRUE(Trace.validate());
  EXPECT_EQ(Trace.objectCount(), 2u);
  EXPECT_EQ(Trace.liveBytesAtEnd(), 128u);
}

TEST(AllocTraceTest, ValidateCatchesDoubleFree) {
  AllocTrace Trace;
  Trace.recordMalloc(0, 64);
  Trace.recordFree(0);
  Trace.recordFree(0);
  EXPECT_FALSE(Trace.validate());
}

TEST(AllocTraceTest, ValidateCatchesUseAfterFreeId) {
  AllocTrace Trace;
  Trace.recordFree(3);
  EXPECT_FALSE(Trace.validate());
}

TEST(AllocTraceTest, GeneratorsProduceValidTraces) {
  EXPECT_TRUE(AllocTrace::churn(20000, 500, 16, 2048, 1).validate());
  EXPECT_TRUE(AllocTrace::fragmented(4096, 16, 8).validate());
  EXPECT_TRUE(AllocTrace::generational(10, 2000, 16, 512, 2).validate());
}

TEST(AllocTraceTest, GeneratorsAreDeterministic) {
  const AllocTrace A = AllocTrace::churn(5000, 200, 16, 256, 7);
  const AllocTrace B = AllocTrace::churn(5000, 200, 16, 256, 7);
  ASSERT_EQ(A.ops().size(), B.ops().size());
  for (size_t I = 0; I < A.ops().size(); ++I) {
    EXPECT_EQ(A.ops()[I].Op, B.ops()[I].Op);
    EXPECT_EQ(A.ops()[I].Id, B.ops()[I].Id);
    EXPECT_EQ(A.ops()[I].Size, B.ops()[I].Size);
  }
}

TEST(AllocTraceTest, ReplayChecksumsAgreeAcrossBackends) {
  // The same trace replayed on three allocators must see identical
  // object contents (the checksum is over data the replay verified).
  const AllocTrace Trace = AllocTrace::churn(30000, 1000, 16, 4096, 11);
  MeshBackend Mesh(traceMeshOptions());
  SizeClassAllocator Jemalloc(size_t{1} << 30, 0);
  FreeListAllocator Glibc;
  const ReplayResult R1 = replayTrace(Trace, Mesh, 4096);
  const ReplayResult R2 = replayTrace(Trace, Jemalloc, 4096);
  const ReplayResult R3 = replayTrace(Trace, Glibc, 4096);
  EXPECT_EQ(R1.Checksum, R2.Checksum);
  EXPECT_EQ(R2.Checksum, R3.Checksum);
  EXPECT_EQ(R1.LiveBytesAtEnd, R2.LiveBytesAtEnd);
}

TEST(AllocTraceTest, FragmentedTraceShowsMeshAdvantage) {
  // The canonical comparison: identical stream, divergent RSS.
  const AllocTrace Trace = AllocTrace::fragmented(32 * 256, 16, 16);
  MeshBackend Mesh(traceMeshOptions());
  SizeClassAllocator Baseline(size_t{1} << 30, 0);
  ReplayResult MeshR = replayTrace(Trace, Mesh, 1024);
  Mesh.flush();
  const size_t MeshFinal = Mesh.committedBytes();
  const ReplayResult BaseR = replayTrace(Trace, Baseline, 1024);
  EXPECT_LT(MeshFinal, BaseR.FinalCommittedBytes)
      << "Mesh must end a fragmented trace with a smaller footprint";
  EXPECT_EQ(MeshR.LiveBytesAtEnd, BaseR.LiveBytesAtEnd);
}

TEST(AllocTraceTest, GenerationalTraceDrainsFully) {
  const AllocTrace Trace = AllocTrace::generational(8, 3000, 32, 512, 13);
  MeshBackend Mesh(traceMeshOptions());
  replayTrace(Trace, Mesh, 0);
  Mesh.runtime().localHeap().releaseAll();
  EXPECT_EQ(Mesh.committedBytes(), 0u)
      << "replay frees every object including leaks";
}

} // namespace
} // namespace mesh
