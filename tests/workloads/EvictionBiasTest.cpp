//===- EvictionBiasTest.cpp - Sampled-LRU behavior tests -------------------===//
///
/// The Redis benchmark's fragmentation depends on *approximated* LRU
/// eviction (random sampling, like Redis's maxmemory-samples). These
/// tests pin the two properties the workload relies on: evictions are
/// biased toward older entries, but scattered enough across insertion
/// order to leave sparse spans behind.
///
//===----------------------------------------------------------------------===//

#include "workloads/KVStore.h"

#include "baseline/SizeClassAllocator.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace mesh {
namespace {

TEST(EvictionBiasTest, SampledEvictionFavorsOldEntries) {
  SizeClassAllocator Heap(256 * 1024 * 1024, 0);
  KVStore Store(Heap, 64 * 1024, /*EvictionSamples=*/5);
  const std::string Value(100, 'v');
  // Insert 2000 keys; the budget holds ~600.
  for (int I = 0; I < 2000; ++I)
    Store.set("key-" + std::to_string(I), Value);
  // Count survivors in the oldest and newest quartile of insertions.
  int OldAlive = 0, NewAlive = 0;
  for (int I = 0; I < 500; ++I)
    OldAlive += !Store.get("key-" + std::to_string(I)).empty();
  for (int I = 1500; I < 2000; ++I)
    NewAlive += !Store.get("key-" + std::to_string(I)).empty();
  EXPECT_GT(NewAlive, OldAlive * 2)
      << "sampling must still skew strongly toward evicting old entries";
}

TEST(EvictionBiasTest, SampledEvictionScattersAcrossInsertOrder) {
  SizeClassAllocator Heap(256 * 1024 * 1024, 0);
  KVStore Store(Heap, 64 * 1024, /*EvictionSamples=*/5);
  const std::string Value(100, 'v');
  for (int I = 0; I < 2000; ++I)
    Store.set("key-" + std::to_string(I), Value);
  // Strict LRU would leave one contiguous suffix alive. Sampled LRU
  // must leave "holes": alive/dead transitions well above 1.
  int Transitions = 0;
  bool Prev = !Store.get("key-0").empty();
  for (int I = 1; I < 2000; ++I) {
    const bool Alive = !Store.get("key-" + std::to_string(I)).empty();
    Transitions += (Alive != Prev);
    Prev = Alive;
  }
  EXPECT_GT(Transitions, 20)
      << "eviction pattern too contiguous to fragment spans";
}

TEST(EvictionBiasTest, StrictModeEvictsExactSuffix) {
  SizeClassAllocator Heap(256 * 1024 * 1024, 0);
  KVStore Store(Heap, 64 * 1024, /*EvictionSamples=*/0);
  const std::string Value(100, 'v');
  for (int I = 0; I < 2000; ++I)
    Store.set("key-" + std::to_string(I), Value);
  // With exact LRU, survivors are precisely the newest insertions.
  bool SeenAlive = false;
  for (int I = 0; I < 2000; ++I) {
    const bool Alive = !Store.get("key-" + std::to_string(I)).empty();
    if (Alive)
      SeenAlive = true;
    else
      EXPECT_FALSE(SeenAlive)
          << "dead entry after a live one under strict LRU at " << I;
  }
}

} // namespace
} // namespace mesh
