//===- KVStoreTest.cpp - Redis-like store tests ----------------------------===//

#include "workloads/KVStore.h"

#include "baseline/SizeClassAllocator.h"

#include <gtest/gtest.h>

#include <string>

namespace mesh {
namespace {

class KVStoreTest : public ::testing::Test {
protected:
  KVStoreTest() : Heap(256 * 1024 * 1024, 0) {}
  SizeClassAllocator Heap;
};

TEST_F(KVStoreTest, SetGetDelete) {
  KVStore Store(Heap, 0);
  Store.set("alpha", "one");
  Store.set("beta", "two");
  EXPECT_EQ(Store.get("alpha"), "one");
  EXPECT_EQ(Store.get("beta"), "two");
  EXPECT_EQ(Store.get("gamma"), "");
  EXPECT_EQ(Store.entryCount(), 2u);
  EXPECT_TRUE(Store.del("alpha"));
  EXPECT_FALSE(Store.del("alpha"));
  EXPECT_EQ(Store.get("alpha"), "");
  EXPECT_EQ(Store.entryCount(), 1u);
}

TEST_F(KVStoreTest, OverwriteReplacesValue) {
  KVStore Store(Heap, 0);
  Store.set("key", "first");
  Store.set("key", "second-longer-value");
  EXPECT_EQ(Store.get("key"), "second-longer-value");
  EXPECT_EQ(Store.entryCount(), 1u);
  EXPECT_EQ(Store.payloadBytes(), 3 + 19u);
}

TEST_F(KVStoreTest, ManyKeysSurviveRehash) {
  KVStore Store(Heap, 0);
  for (int I = 0; I < 20000; ++I)
    Store.set("key-" + std::to_string(I), "value-" + std::to_string(I));
  EXPECT_EQ(Store.entryCount(), 20000u);
  for (int I = 0; I < 20000; I += 97)
    ASSERT_EQ(Store.get("key-" + std::to_string(I)),
              "value-" + std::to_string(I));
}

TEST_F(KVStoreTest, LruEvictionRespectsBudget) {
  KVStore Store(Heap, 10 * 1024, /*EvictionSamples=*/0);
  const std::string Value(100, 'v');
  for (int I = 0; I < 1000; ++I)
    Store.set("key-" + std::to_string(I), Value);
  EXPECT_LE(Store.payloadBytes(), 10u * 1024);
  EXPECT_GT(Store.evictionCount(), 0u);
  // Recently used keys survive; the oldest were evicted.
  EXPECT_NE(Store.get("key-999"), "");
  EXPECT_EQ(Store.get("key-0"), "");
}

TEST_F(KVStoreTest, GetRefreshesLruPosition) {
  KVStore Store(Heap, 350, /*EvictionSamples=*/0);
  const std::string Value(100, 'v');
  Store.set("a", Value);
  Store.set("b", Value);
  Store.set("c", Value);
  // Touch "a" so "b" is now least recently used; the next insert
  // must evict "b", not "a".
  EXPECT_NE(Store.get("a"), "");
  Store.set("d", Value);
  EXPECT_NE(Store.get("a"), "");
  EXPECT_EQ(Store.get("b"), "");
}

TEST_F(KVStoreTest, ActiveDefragPreservesContents) {
  KVStore Store(Heap, 0);
  for (int I = 0; I < 5000; ++I)
    Store.set("key-" + std::to_string(I), "value-" + std::to_string(I));
  const size_t Moved = Store.activeDefrag();
  EXPECT_GT(Moved, 0u);
  for (int I = 0; I < 5000; I += 53)
    ASSERT_EQ(Store.get("key-" + std::to_string(I)),
              "value-" + std::to_string(I));
}

TEST_F(KVStoreTest, EmptyKeysAndValuesFullLifecycle) {
  // Regression: copyString used to memcpy from a possibly-null
  // string_view::data() through a malloc(0) pointer. Empty keys and
  // empty values must survive the full set/get/del/defrag lifecycle.
  KVStore Store(Heap, 0);
  Store.set("", "empty-key-value");
  Store.set("empty-value", "");
  Store.set("", "overwritten"); // Overwrite through the empty key.
  EXPECT_EQ(Store.get(""), "overwritten");
  EXPECT_EQ(Store.get("empty-value"), "");
  EXPECT_EQ(Store.entryCount(), 2u);
  // An absent key and a present-but-empty value are distinguishable
  // only through entryCount/del — both get() views are empty.
  EXPECT_EQ(Store.get("absent"), "");
  const size_t Moved = Store.activeDefrag();
  EXPECT_EQ(Moved, Store.payloadBytes());
  EXPECT_EQ(Store.get(""), "overwritten");
  EXPECT_EQ(Store.get("empty-value"), "");
  EXPECT_TRUE(Store.del(""));
  EXPECT_FALSE(Store.del(""));
  EXPECT_TRUE(Store.del("empty-value"));
  EXPECT_EQ(Store.entryCount(), 0u);
}

TEST_F(KVStoreTest, DefragInvalidatesViewsAndTicksGeneration) {
  KVStore Store(Heap, 0);
  Store.set("key", "a-value-long-enough-to-not-be-inlined-anywhere");
  EXPECT_EQ(Store.defragGeneration(), 0u);
  const std::string_view Before = Store.get("key");
  const uint64_t GenAtGet = Store.defragGeneration();
  Store.activeDefrag();
  // The view taken before the pass is now dangling (Debug builds
  // poison the old bytes with 0xDB); the generation tick is how
  // callers detect it without touching freed memory.
  EXPECT_NE(Store.defragGeneration(), GenAtGet);
  const std::string_view After = Store.get("key");
  EXPECT_EQ(After, "a-value-long-enough-to-not-be-inlined-anywhere");
  EXPECT_NE(After.data(), Before.data())
      << "defrag must have moved the value to fresh storage";
}

TEST_F(KVStoreTest, DrainsHeapOnDestruction) {
  {
    KVStore Store(Heap, 0);
    for (int I = 0; I < 1000; ++I)
      Store.set("key-" + std::to_string(I), std::string(200, 'x'));
  }
  EXPECT_EQ(Heap.committedBytes(), 0u)
      << "the store must free everything it allocated";
}

} // namespace
} // namespace mesh
