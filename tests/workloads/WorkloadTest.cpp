//===- WorkloadTest.cpp - Workload generator smoke + shape tests -----------===//
///
/// Scaled-down runs of each benchmark workload: they must complete,
/// drain their heaps, and exhibit the fragmentation shape the full
/// benchmarks rely on (Mesh reclaiming more than the non-compacting
/// baseline under identical streams).
///
//===----------------------------------------------------------------------===//

#include "workloads/BrowserWorkload.h"
#include "workloads/MemoryMeter.h"
#include "workloads/RedisWorkload.h"
#include "workloads/RubyWorkload.h"
#include "workloads/SpecWorkload.h"

#include "baseline/FreeListAllocator.h"
#include "baseline/SizeClassAllocator.h"

#include <gtest/gtest.h>

namespace mesh {
namespace {

MeshOptions benchMeshOptions(bool Meshing = true, bool Rand = true) {
  MeshOptions Opts;
  Opts.ArenaBytes = size_t{2} << 30;
  Opts.MeshingEnabled = Meshing;
  Opts.Randomized = Rand;
  Opts.MeshPeriodMs = 10;
  Opts.Seed = 7;
  return Opts;
}

TEST(MemoryMeterTest, SamplesOnCadence) {
  SizeClassAllocator Heap(256 * 1024 * 1024, 0);
  MemoryMeter Meter(Heap, 10);
  for (int I = 0; I < 100; ++I)
    Meter.recordOp();
  EXPECT_EQ(Meter.samples().size(), 11u) << "initial sample + 10 periodic";
  EXPECT_EQ(Meter.peakCommittedBytes(), 0u);
  void *P = Heap.malloc(100000);
  Meter.sampleNow();
  EXPECT_GT(Meter.peakCommittedBytes(), 0u);
  EXPECT_GT(Meter.meanCommittedBytes(), 0.0);
  Heap.free(P);
}

TEST(RedisWorkloadTest, ScaledRunCompletes) {
  RedisWorkloadConfig Config;
  Config.Scale = 0.02; // 14k + 3.4k keys, 2 MB budget
  Config.IdleRounds = 4;
  MeshBackend Backend(benchMeshOptions());
  MemoryMeter Meter(Backend, 5000);
  const RedisWorkloadResult Result =
      runRedisWorkload(Backend, Meter, Config);
  EXPECT_GT(Result.Evictions, 0u) << "the LRU budget must bind";
  EXPECT_GT(Result.FinalEntries, 0u);
  EXPECT_GT(Result.InsertSeconds, 0.0);
  EXPECT_GT(Meter.samples().size(), 4u);
}

TEST(RedisWorkloadTest, ActiveDefragPathRuns) {
  RedisWorkloadConfig Config;
  Config.Scale = 0.02;
  Config.IdleRounds = 3;
  Config.UseActiveDefrag = true;
  SizeClassAllocator Backend(512 * 1024 * 1024, 0);
  MemoryMeter Meter(Backend, 5000);
  const RedisWorkloadResult Result =
      runRedisWorkload(Backend, Meter, Config);
  EXPECT_GT(Result.DefragMovedBytes, 0u);
  EXPECT_GT(Result.MaintenanceSeconds, 0.0);
}

TEST(RubyWorkloadTest, MeshReclaimsMoreThanBaseline) {
  RubyWorkloadConfig Config;
  Config.BytesPerRound = 2 * 1024 * 1024;
  Config.Rounds = 5;
  Config.OpsPerSample = 4096;

  SizeClassAllocator Baseline(512 * 1024 * 1024, 0);
  MemoryMeter BaselineMeter(Baseline, Config.OpsPerSample);
  const RubyWorkloadResult BaseResult =
      runRubyWorkload(Baseline, BaselineMeter, Config);

  MeshBackend Meshy(benchMeshOptions());
  MemoryMeter MeshMeter(Meshy, Config.OpsPerSample);
  const RubyWorkloadResult MeshResult =
      runRubyWorkload(Meshy, MeshMeter, Config);

  EXPECT_EQ(BaseResult.FinalLiveBytes, MeshResult.FinalLiveBytes)
      << "same workload stream";
  EXPECT_LT(MeshResult.FinalCommittedBytes, BaseResult.FinalCommittedBytes)
      << "Mesh must end the Ruby workload with a smaller footprint";
}

TEST(BrowserWorkloadTest, ScaledRunCompletesAndDrains) {
  BrowserWorkloadConfig Config;
  Config.Episodes = 4;
  Config.AllocsPerEpisode = 4000;
  Config.CooldownRounds = 3;
  MeshBackend Backend(benchMeshOptions());
  MemoryMeter Meter(Backend, 4096);
  const BrowserWorkloadResult Result =
      runBrowserWorkload(Backend, Meter, Config);
  EXPECT_GT(Result.Score, 0.0);
  EXPECT_GT(Meter.samples().size(), 4u);
  Backend.flush();
}

TEST(SpecWorkloadTest, AllBenchmarksRunOnBothAllocators) {
  for (size_t I = 0; I < specBenchmarkNames().size(); ++I) {
    FreeListAllocator Glibc;
    const SpecBenchResult BaseResult =
        runSpecBenchmark(I, Glibc, /*Scale=*/0.02);
    EXPECT_GT(BaseResult.PeakBytes, 0u) << BaseResult.Name;

    MeshBackend Meshy(benchMeshOptions());
    const SpecBenchResult MeshResult =
        runSpecBenchmark(I, Meshy, /*Scale=*/0.02);
    EXPECT_GT(MeshResult.PeakBytes, 0u) << MeshResult.Name;
    EXPECT_STREQ(BaseResult.Name, MeshResult.Name);
  }
}

} // namespace
} // namespace mesh
