#!/usr/bin/env python3
"""CI perf-regression gate over bench_soak / bench_* JSON lines.

Compares a freshly produced JSONL result file against the committed
trajectory point (BENCH_<pr>.json) and fails when any watched metric
regresses beyond its noise threshold:

    tools/bench_compare.py BENCH_6.json fresh.jsonl

Matching: lines pair up by (bench, config, profile).  A baseline line
with no fresh counterpart fails the gate (a silently vanished
configuration is exactly the rot the gate exists to catch); fresh lines
with no baseline counterpart are reported but pass (new configurations
enter the trajectory at the next BENCH_<pr>.json).

Checked per matched pair:
  - schema version equality (meaning drift is a hard error),
  - run-shape keys (ops, threads) exact equality — comparing runs of
    different shapes would make every threshold meaningless,
  - ratio thresholds on RSS and latency/throughput metrics, sized to
    shared-CI noise (latency on a loaded runner is far noisier than
    RSS, hence the wide 2.5x band; RSS is the paper's headline metric
    and gets the tight band),
  - an absolute floor on meshing effectiveness (meshed_away_pct may
    legitimately be ~0 in some configs, so a ratio would divide by
    zero).

Correctness canaries (get_mismatches) must be exactly zero.

stdlib only; no third-party imports.
"""

import json
import sys

# (key, max_ratio fresh/baseline, direction) — direction "up" means
# larger-is-worse (RSS, latency), "down" means smaller-is-worse
# (throughput: fail when fresh < baseline / ratio).
RATIO_CHECKS = [
    ("rss_mean_mib", 1.35, "up"),
    ("rss_peak_mib", 1.35, "up"),
    ("committed_mib", 1.35, "up"),
    ("p50_op_ns", 2.5, "up"),
    ("p99_op_ns", 2.5, "up"),
    ("p999_op_ns", 3.0, "up"),
    ("ops_per_sec", 2.5, "down"),
    ("max_pause_fg_ns", 3.0, "up"),
    # Mesh-pause tail from the telemetry histogram (log2 buckets, so a
    # one-bucket wobble is a 2x swing; the 3x band tolerates one bucket
    # of noise but catches a pause-distribution blowup).
    ("mesh_pause_p999_ns", 3.0, "up"),
]

# Absolute-drop checks: fail when fresh < baseline - slack.
ABSOLUTE_FLOOR_CHECKS = [
    ("meshed_away_pct", 15.0),
]

# Must be exactly zero in fresh results regardless of baseline.
ZERO_CHECKS = ["get_mismatches"]

# Exact-match run-shape keys: a mismatch means the two runs are not
# comparable at all (different profile wiring), which is a harness bug,
# not a perf regression.
SHAPE_KEYS = ["ops", "threads"]

# Ignore this much absolute difference before applying ratio checks:
# sub-microsecond latencies and sub-MiB footprints are all noise.
RATIO_MIN_ABS = {
    "rss_mean_mib": 4.0,
    "rss_peak_mib": 4.0,
    "committed_mib": 4.0,
    "p50_op_ns": 400.0,
    "p99_op_ns": 4000.0,
    "p999_op_ns": 20000.0,
    "ops_per_sec": 0.0,
    "max_pause_fg_ns": 2_000_000.0,
    "mesh_pause_p999_ns": 2_000_000.0,
}


def load_lines(path):
    """Parses a JSONL file into {(bench, config, profile): line}."""
    lines = {}
    with open(path) as f:
        for lineno, raw in enumerate(f, 1):
            raw = raw.strip()
            if not raw or not raw.startswith("{"):
                continue  # Benches interleave human-readable output.
            try:
                doc = json.loads(raw)
            except json.JSONDecodeError as e:
                sys.exit(f"{path}:{lineno}: unparseable JSON line: {e}")
            if "bench" not in doc or "schema" not in doc:
                continue  # A JSON line, but not a bench result.
            key = (doc["bench"], doc.get("config", ""), doc.get("profile", ""))
            if key in lines:
                sys.exit(f"{path}:{lineno}: duplicate result for {key}")
            lines[key] = doc
    if not lines:
        sys.exit(f"{path}: no bench result lines found")
    return lines


def key_name(key):
    bench, config, profile = key
    return f"{bench}/{config or '-'}@{profile or '-'}"


def compare_pair(key, base, fresh, failures):
    name = key_name(key)
    if base["schema"] != fresh["schema"]:
        failures.append(
            f"{name}: schema version changed {base['schema']} -> "
            f"{fresh['schema']}; regenerate the baseline, do not compare"
        )
        return
    for shape in SHAPE_KEYS:
        if shape in base and base.get(shape) != fresh.get(shape):
            failures.append(
                f"{name}: run shape differs ({shape}: {base.get(shape)} vs "
                f"{fresh.get(shape)}); baseline and CI must run the same "
                f"profile"
            )
            return
    for zkey in ZERO_CHECKS:
        if fresh.get(zkey, 0) != 0:
            failures.append(f"{name}: {zkey} = {fresh[zkey]} (must be 0)")
    for rkey, max_ratio, direction in RATIO_CHECKS:
        if rkey not in base or rkey not in fresh:
            continue
        b, f = float(base[rkey]), float(fresh[rkey])
        if abs(f - b) <= RATIO_MIN_ABS.get(rkey, 0.0):
            continue
        if direction == "up":
            if b > 0 and f > b * max_ratio:
                failures.append(
                    f"{name}: {rkey} regressed {b:.1f} -> {f:.1f} "
                    f"(> {max_ratio}x)"
                )
        else:
            if f > 0 and b > f * max_ratio:
                failures.append(
                    f"{name}: {rkey} regressed {b:.1f} -> {f:.1f} "
                    f"(< 1/{max_ratio}x)"
                )
    for akey, slack in ABSOLUTE_FLOOR_CHECKS:
        if akey not in base or akey not in fresh:
            continue
        b, f = float(base[akey]), float(fresh[akey])
        if f < b - slack:
            failures.append(
                f"{name}: {akey} dropped {b:.1f} -> {f:.1f} "
                f"(> {slack} points)"
            )


def main():
    if len(sys.argv) != 3:
        sys.exit(f"usage: {sys.argv[0]} BASELINE.json FRESH.jsonl")
    baseline = load_lines(sys.argv[1])
    fresh = load_lines(sys.argv[2])

    failures = []
    compared = 0
    for key, base in sorted(baseline.items()):
        if key not in fresh:
            failures.append(
                f"{key_name(key)}: present in baseline but missing from "
                f"fresh results — a soak configuration stopped running"
            )
            continue
        compare_pair(key, base, fresh[key], failures)
        compared += 1
    for key in sorted(fresh.keys()):
        if key not in baseline:
            print(f"note: {key_name(key)} is new (not in baseline); "
                  f"it will be gated once committed to a BENCH_*.json")

    print(f"bench_compare: {compared} configuration(s) compared against "
          f"{sys.argv[1]}")
    if failures:
        print(f"bench_compare: FAIL ({len(failures)} regression(s)):")
        for f in failures:
            print(f"  - {f}")
        sys.exit(1)
    print("bench_compare: PASS")


if __name__ == "__main__":
    main()
