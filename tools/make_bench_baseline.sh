#!/usr/bin/env bash
# Produces the committed perf-trajectory point BENCH_<pr>.json: the
# "ci" soak profile in both allocator modes, concatenated into one
# JSONL file. CI reruns exactly these invocations per PR and gates on
# tools/bench_compare.py against the newest committed BENCH_*.json.
#
#   tools/make_bench_baseline.sh <build-dir> <out-file>
#   e.g. tools/make_bench_baseline.sh build BENCH_6.json
#
# Run on a quiet machine: the thresholds in bench_compare.py assume
# only shared-CI-grade noise on top of the committed numbers.

set -euo pipefail

BUILD_DIR=${1:?usage: $0 <build-dir> <out-file>}
OUT=${2:?usage: $0 <build-dir> <out-file>}

SOAK="$BUILD_DIR/bench/bench_soak"
MT="$BUILD_DIR/bench/bench_mt"
SHIM="$BUILD_DIR/src/libmesh.so"
[ -x "$SOAK" ] || { echo "$SOAK not built" >&2; exit 1; }
[ -x "$MT" ] || { echo "$MT not built" >&2; exit 1; }
[ -f "$SHIM" ] || { echo "$SHIM not built (MESH_SANITIZE build?)" >&2; exit 1; }

TMP_IN=$(mktemp)
TMP_PRE=$(mktemp)
TMP_MT=$(mktemp)
trap 'rm -f "$TMP_IN" "$TMP_PRE" "$TMP_MT"' EXIT

# In-process instance runtime (the library-API shape).
"$SOAK" --profile=ci --json-out="$TMP_IN" >/dev/null

# Interposed default runtime with background meshing (the production
# server shape).
LD_PRELOAD="$SHIM" MESH_BACKGROUND=1 \
  "$SOAK" --profile=ci --backend=system --json-out="$TMP_PRE" >/dev/null

# Hot-path mixes, including the refill-miss mix that lands entirely on
# the per-class arena shards. In-process (library-API) shape.
"$MT" --json-out="$TMP_MT" >/dev/null

cat "$TMP_IN" "$TMP_PRE" "$TMP_MT" > "$OUT"
echo "wrote $(wc -l < "$OUT") result line(s) to $OUT"
