#!/usr/bin/env python3
"""mesh-lint — repo-specific static checks for Mesh's concurrency and
fork-safety contracts.

The Clang thread-safety analysis (-Werror=thread-safety, see
src/support/Annotations.h) proves lock discipline; this linter covers
the contracts that are NOT expressible as capabilities:

  atfork-unsafe-call   Nothing reachable from a pthread_atfork child
                       handler may allocate or call non-async-signal-
                       safe functions (stdio, fatalError's vsnprintf,
                       InternalHeap::makeNew, operator new). POSIX
                       permits only async-signal-safe calls in the
                       forked child of a multithreaded process; a
                       violation is a silent deadlock on somebody
                       else's malloc lock.
  shim-static-init     The interpose layer (src/interpose/) must not
                       define file-scope objects with non-trivial
                       constructors: the shim is live before static
                       initializers run (malloc during early libc
                       setup), so its state must be constant- or
                       zero-initialized PODs / __thread variables.
  mallctl-coherence    Every leaf in kMallctlLeaves (src/core/
                       Runtime.cpp, the authority behind
                       "version.leaves") must be documented in
                       src/api/mesh/mesh.h and vice versa.
  tsan-supp-comments   Every suppression in tsan.supp must carry a
                       comment block explaining the benign mechanism
                       and naming the test that pins the mechanism
                       (so a suppression can never outlive the code
                       path it excuses).

Engine: a deliberately conservative text-level call-graph (comments and
string literals stripped, function bodies matched by brace balance,
edges keyed on unqualified names — over-approximate by construction, so
name collisions can only ADD paths, never hide one). An optional
libclang engine (--engine=clang) refines the call graph when the
python clang bindings are importable; the text engine is the default
and the one CI runs, so results never depend on host packages.

Suppressions:
  - inline:  append  "// mesh-lint: allow(<rule>)"  to the flagged line
  - global:  add     "<rule> <substring>"           to tools/mesh-lint.allow
Both forms are audited output in --verbose mode; an allow entry that no
longer matches anything is itself reported (stale-suppression check).

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# ----------------------------------------------------------------------------
# Rule configuration
# ----------------------------------------------------------------------------

# Call-graph roots for atfork-unsafe-call: the pthread_atfork child
# handler and everything it dispatches to (Runtime.cpp's child() walks
# the runtime registry calling these). Matched by unqualified name.
ATFORK_CHILD_ROOTS = [
    "child",                      # RuntimeForkSupport::child
    "reinitFenceModeAfterFork",   # Epoch
    "reinitializeArenaAfterFork", # GlobalHeap -> MeshableArena
    "resetDeferredAfterFork",     # MeshableArena
    "resetEpochAfterFork",        # GlobalHeap
    "resumeAfterForkChild",       # BackgroundMesher
    "fatalErrorForkSafe",         # the only permitted abort path here
]

# Bare (non-member) calls banned anywhere reachable from the roots.
# stdio: not async-signal-safe, may take libc-internal locks a dead
# parent thread owned. malloc family / operator new: same, plus the
# child's own arena is mid-rebuild. fatalError: its vsnprintf
# allocates on some libcs — fatalErrorForkSafe (pure write(2)) is the
# sanctioned replacement. logWarning: vfprintf underneath.
ATFORK_BANNED_BARE = {
    "printf", "fprintf", "vfprintf", "sprintf", "vsprintf", "snprintf",
    "vsnprintf", "puts", "fputs", "fputc", "putchar", "fwrite", "fread",
    "fflush", "fopen", "fclose", "perror", "fmtMessage",
    "malloc", "calloc", "realloc", "free", "posix_memalign",
    "aligned_alloc", "strdup", "asprintf", "vasprintf",
    "fatalError", "logWarning",
}

# Banned even as member calls (allocating helpers of our own).
ATFORK_BANNED_ANY = {"makeNew", "makeNewArray"}

# Non-trivially-constructible types that must never appear as
# file-scope objects in the interpose layer.
SHIM_NONTRIVIAL_TYPES = (
    "std::string", "std::vector", "std::map", "std::unordered_map",
    "std::set", "std::unordered_set", "std::list", "std::deque",
    "std::function", "std::mutex", "std::recursive_mutex",
    "std::condition_variable", "std::shared_ptr", "std::unique_ptr",
    "std::ostringstream", "std::stringstream", "std::ofstream",
)

CPP_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch",
    "alignof", "decltype", "static_assert", "defined", "assert",
    "throw", "new", "delete", "case", "do", "else", "goto", "typeid",
    "alignas", "noexcept", "and", "or", "not", "co_await", "co_return",
}

ALLOWLIST_PATH = os.path.join(REPO, "tools", "mesh-lint.allow")

# ----------------------------------------------------------------------------
# Findings / suppression plumbing
# ----------------------------------------------------------------------------

class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path          # repo-relative
        self.line = line          # 1-based, 0 = whole file
        self.message = message

    def __str__(self):
        loc = "%s:%d" % (self.path, self.line) if self.line else self.path
        return "%s: [%s] %s" % (loc, self.rule, self.message)


def load_allowlist():
    entries = []  # (rule, substring, used-flag-holder)
    if not os.path.exists(ALLOWLIST_PATH):
        return entries
    with open(ALLOWLIST_PATH) as fh:
        for n, raw in enumerate(fh, 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, 1)
            if len(parts) != 2:
                print("mesh-lint: %s:%d: malformed allow entry: %r"
                      % (ALLOWLIST_PATH, n, line), file=sys.stderr)
                sys.exit(2)
            entries.append([parts[0], parts[1], False])
    return entries


def suppressed(finding, source_lines, allowlist):
    # Inline: "// mesh-lint: allow(rule)" on the flagged line.
    if finding.line and finding.line <= len(source_lines):
        text = source_lines[finding.line - 1]
        if re.search(r"mesh-lint:\s*allow\(%s\)" % re.escape(finding.rule),
                     text):
            return True
    for entry in allowlist:
        rule, substring, _ = entry
        if rule == finding.rule and (substring in finding.path or
                                     substring in finding.message):
            entry[2] = True
            return True
    return False

# ----------------------------------------------------------------------------
# Text engine: comment stripping, function extraction, call graph
# ----------------------------------------------------------------------------

def strip_comments_and_strings(text):
    """Blanks comments/string/char literals, preserving newlines and
    column positions so line numbers survive."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            seg = text[i:j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in seg))
            i = j + 2
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(quote + " " * (j - i - 1) + (quote if j < n else ""))
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _match_delim(text, i, open_ch, close_ch):
    depth = 0
    for j in range(i, len(text)):
        if text[j] == open_ch:
            depth += 1
        elif text[j] == close_ch:
            depth -= 1
            if depth == 0:
                return j
    return -1


class FunctionDef:
    def __init__(self, simple, path, line, body):
        self.simple = simple
        self.path = path
        self.line = line
        self.body = body          # cleaned text incl. ctor-init list
        self.calls = []           # (simple_name, is_member, line)


def extract_functions(clean, path):
    """Finds function definitions by 'name(args) [qualifiers] {' shape.
    Over-approximate: junk matches only add unreachable graph nodes."""
    defs = []
    for m in re.finditer(r"\b((?:[A-Za-z_]\w*::)*~?[A-Za-z_]\w*)\s*\(", clean):
        name = m.group(1)
        simple = name.split("::")[-1].lstrip("~")
        if simple in CPP_KEYWORDS:
            continue
        k = m.start() - 1
        while k >= 0 and clean[k] in " \t":
            k -= 1
        # Preceded by an operator or member access: an expression, not
        # a definition.
        if k >= 0 and clean[k] in ".>&!=+-*/%,(|[<?:":
            continue
        close = _match_delim(clean, m.end() - 1, "(", ")")
        if close < 0:
            continue
        # Scan for the body '{', accepting qualifiers, attributes and a
        # ctor-init list; bail on ';' (declaration) or '=' (= default /
        # = delete / initializer).
        j = close + 1
        body_open = -1
        while j < len(clean):
            c = clean[j]
            if c == "{":
                body_open = j
                break
            if c in ";=":
                break
            if c == "(":
                j = _match_delim(clean, j, "(", ")")
                if j < 0:
                    break
                j += 1
                continue
            if c.isalnum() or c in "_:,&*<>~ \t\n[]":
                j += 1
                continue
            break
        if body_open < 0 or j < 0:
            continue
        body_close = _match_delim(clean, body_open, "{", "}")
        if body_close < 0:
            continue
        line = clean.count("\n", 0, m.start()) + 1
        # Body includes the ctor-init list (calls live there too).
        body = clean[close + 1:body_close + 1]
        fd = FunctionDef(simple, path, line, body)
        base = close + 1
        for cm in re.finditer(
                r"\b((?:[A-Za-z_]\w*::)*[A-Za-z_]\w*)\s*\(", body):
            callee = cm.group(1).split("::")[-1]
            if callee in CPP_KEYWORDS:
                continue
            p = cm.start() - 1
            while p >= 0 and body[p] in " \t":
                p -= 1
            is_member = p >= 0 and (
                body[p] == "." or (body[p] == ">" and p > 0 and
                                   body[p - 1] == "-"))
            call_line = clean.count("\n", 0, base + cm.start()) + 1
            fd.calls.append((callee, is_member, call_line))
        if re.search(r"\bnew\b", body):
            nm = re.search(r"\bnew\b", body)
            fd.calls.append(("operator new", False,
                             clean.count("\n", 0, base + nm.start()) + 1))
        defs.append(fd)
    return defs


def collect_sources():
    files = []
    for sub in ("src",):
        for root, _, names in os.walk(os.path.join(REPO, sub)):
            for n in sorted(names):
                if n.endswith((".cpp", ".h")):
                    files.append(os.path.join(root, n))
    return files


def build_call_graph(paths):
    graph = {}  # simple name -> list of FunctionDef
    for path in paths:
        with open(path) as fh:
            text = fh.read()
        clean = strip_comments_and_strings(text)
        for fd in extract_functions(clean, os.path.relpath(path, REPO)):
            graph.setdefault(fd.simple, []).append(fd)
    return graph

# ----------------------------------------------------------------------------
# Rule: atfork-unsafe-call
# ----------------------------------------------------------------------------

def check_atfork(graph):
    findings = []
    visited = set()
    # (name, chain) worklist; chain is the human-readable call path.
    work = [(r, r) for r in ATFORK_CHILD_ROOTS]
    while work:
        name, chain = work.pop()
        if name in visited:
            continue
        visited.add(name)
        for fd in graph.get(name, []):
            for callee, is_member, line in fd.calls:
                banned = (callee in ATFORK_BANNED_ANY or
                          (not is_member and callee in ATFORK_BANNED_BARE))
                if banned:
                    findings.append(Finding(
                        "atfork-unsafe-call", fd.path, line,
                        "'%s' reachable from atfork child handler "
                        "(via %s) is not async-signal-safe%s"
                        % (callee, chain,
                           "; use fatalErrorForkSafe"
                           if callee in ("fatalError", "logWarning")
                           else "")))
                elif callee in graph and callee not in visited:
                    work.append((callee, "%s -> %s" % (chain, callee)))
    return findings

# ----------------------------------------------------------------------------
# Rule: shim-static-init
# ----------------------------------------------------------------------------

def check_shim_static_init():
    findings = []
    shim_dir = os.path.join(REPO, "src", "interpose")
    for root, _, names in os.walk(shim_dir):
        for n in sorted(names):
            if not n.endswith((".cpp", ".h")):
                continue
            path = os.path.join(root, n)
            rel = os.path.relpath(path, REPO)
            with open(path) as fh:
                text = fh.read()
            clean = strip_comments_and_strings(text)
            # Mask function bodies: only file/namespace scope remains.
            masked = clean
            for fd in extract_functions(clean, rel):
                # Cheap mask: blank the body text occurrences by span
                # search (body text is unique enough in practice).
                idx = masked.find(fd.body)
                if idx >= 0:
                    blank = "".join(c if c == "\n" else " "
                                    for c in fd.body)
                    masked = masked[:idx] + blank + masked[idx + len(blank):]
            for t in SHIM_NONTRIVIAL_TYPES:
                for m in re.finditer(re.escape(t) + r"\b", masked):
                    line = masked.count("\n", 0, m.start()) + 1
                    findings.append(Finding(
                        "shim-static-init", rel, line,
                        "non-trivially-constructible type %s at file "
                        "scope in the interpose layer (shim code runs "
                        "before static initializers)" % t))
            # static Obj Name(args); — runtime construction at load.
            for m in re.finditer(
                    r"(?m)^static\s+(?:const\s+)?([A-Z]\w*(?:::\w+)*)\s+"
                    r"\w+\s*\([^)]", masked):
                line = masked.count("\n", 0, m.start()) + 1
                findings.append(Finding(
                    "shim-static-init", rel, line,
                    "file-scope 'static %s' with constructor arguments "
                    "in the interpose layer" % m.group(1)))
    return findings

# ----------------------------------------------------------------------------
# Rule: mallctl-coherence
# ----------------------------------------------------------------------------

LEAF_RE = re.compile(r'"([a-z]+(?:\.[a-z_0-9]+)+)"')

def check_mallctl():
    findings = []
    runtime_cpp = os.path.join(REPO, "src", "core", "Runtime.cpp")
    api_h = os.path.join(REPO, "src", "api", "mesh", "mesh.h")
    with open(runtime_cpp) as fh:
        rt = fh.read()
    m = re.search(r"kMallctlLeaves\[\]\s*=\s*\{(.*?)\};", rt, re.S)
    if not m:
        return [Finding("mallctl-coherence", "src/core/Runtime.cpp", 0,
                        "kMallctlLeaves[] registry not found")]
    reg_line = rt.count("\n", 0, m.start()) + 1
    registry = set(LEAF_RE.findall(m.group(1)))
    with open(api_h) as fh:
        documented = set(LEAF_RE.findall(fh.read()))
    # "version.leaves" is self-describing; it lives in the registry and
    # the docs like any other leaf, so no special case is needed.
    for leaf in sorted(registry - documented):
        findings.append(Finding(
            "mallctl-coherence", "src/api/mesh/mesh.h", 0,
            "mallctl leaf '%s' is dispatched (kMallctlLeaves) but not "
            "documented in the public header" % leaf))
    for leaf in sorted(documented - registry):
        findings.append(Finding(
            "mallctl-coherence", "src/core/Runtime.cpp", reg_line,
            "mallctl leaf '%s' is documented in src/api/mesh/mesh.h "
            "but missing from kMallctlLeaves" % leaf))
    return findings

# ----------------------------------------------------------------------------
# Rule: tsan-supp-comments
# ----------------------------------------------------------------------------

TEST_NAME_RE = re.compile(r"\b[A-Z]\w*Test\.\w+|\bpinned by\s+\S+")

def check_tsan_supp():
    findings = []
    path = os.path.join(REPO, "tsan.supp")
    if not os.path.exists(path):
        return findings
    with open(path) as fh:
        lines = fh.read().splitlines()
    comment_block = []
    for n, line in enumerate(lines, 1):
        stripped = line.strip()
        if stripped.startswith("#"):
            comment_block.append(stripped)
        elif not stripped:
            comment_block = []
        else:
            block = " ".join(comment_block)
            if len(block.split()) < 12:
                findings.append(Finding(
                    "tsan-supp-comments", "tsan.supp", n,
                    "suppression '%s' lacks a comment explaining the "
                    "benign mechanism" % stripped))
            if not TEST_NAME_RE.search(block):
                findings.append(Finding(
                    "tsan-supp-comments", "tsan.supp", n,
                    "suppression '%s' does not name the test pinning "
                    "its mechanism (write 'pinned by <Suite.Case>')"
                    % stripped))
            comment_block = []
    return findings

# ----------------------------------------------------------------------------
# Optional libclang engine
# ----------------------------------------------------------------------------

def try_clang_engine(verbose):
    """Refines the atfork call graph via libclang when importable.
    Returns a graph in the text engine's shape, or None."""
    try:
        from clang import cindex  # noqa: F401
    except Exception:
        if verbose:
            print("mesh-lint: libclang not importable; using text engine")
        return None
    try:
        from clang.cindex import Index, CursorKind
        cc = os.path.join(REPO, "build", "compile_commands.json")
        if not os.path.exists(cc):
            return None
        import json
        with open(cc) as fh:
            commands = json.load(fh)
        index = Index.create()
        graph = {}
        for entry in commands:
            if "/src/" not in entry["file"]:
                continue
            args = [a for a in entry["arguments"][1:]
                    if a != entry["file"]] if "arguments" in entry else []
            tu = index.parse(entry["file"], args=args)
            stack = [tu.cursor]
            while stack:
                cur = stack.pop()
                if cur.kind in (CursorKind.CXX_METHOD,
                                CursorKind.FUNCTION_DECL,
                                CursorKind.CONSTRUCTOR,
                                CursorKind.DESTRUCTOR) \
                        and cur.is_definition():
                    fd = FunctionDef(cur.spelling,
                                     os.path.relpath(str(cur.location.file),
                                                     REPO),
                                     cur.location.line, "")
                    for c in cur.walk_preorder():
                        if c.kind == CursorKind.CALL_EXPR and c.spelling:
                            fd.calls.append((c.spelling, False,
                                             c.location.line))
                    graph.setdefault(fd.simple, []).append(fd)
                stack.extend(cur.get_children())
        return graph or None
    except Exception as e:
        if verbose:
            print("mesh-lint: libclang engine failed (%s); "
                  "falling back to text engine" % e)
        return None

# ----------------------------------------------------------------------------
# main
# ----------------------------------------------------------------------------

def main():
    ap = argparse.ArgumentParser(
        prog="mesh-lint",
        description="Mesh repo-specific concurrency/fork-safety linter")
    ap.add_argument("--check", action="store_true",
                    help="CI mode (same as default: exit 1 on findings)")
    ap.add_argument("--engine", choices=("text", "clang"), default="text",
                    help="call-graph engine for atfork-unsafe-call")
    ap.add_argument("--verbose", "-v", action="store_true")
    ap.add_argument("--rule", action="append",
                    choices=("atfork-unsafe-call", "shim-static-init",
                             "mallctl-coherence", "tsan-supp-comments"),
                    help="run only the given rule(s)")
    args = ap.parse_args()

    rules = set(args.rule) if args.rule else {
        "atfork-unsafe-call", "shim-static-init",
        "mallctl-coherence", "tsan-supp-comments"}

    graph = None
    if "atfork-unsafe-call" in rules:
        if args.engine == "clang":
            graph = try_clang_engine(args.verbose)
        if graph is None:
            graph = build_call_graph(collect_sources())

    findings = []
    if "atfork-unsafe-call" in rules:
        findings += check_atfork(graph)
    if "shim-static-init" in rules:
        findings += check_shim_static_init()
    if "mallctl-coherence" in rules:
        findings += check_mallctl()
    if "tsan-supp-comments" in rules:
        findings += check_tsan_supp()

    allowlist = load_allowlist()
    survivors = []
    file_cache = {}
    for f in findings:
        abspath = os.path.join(REPO, f.path)
        if abspath not in file_cache:
            try:
                with open(abspath) as fh:
                    file_cache[abspath] = fh.read().splitlines()
            except OSError:
                file_cache[abspath] = []
        if suppressed(f, file_cache[abspath], allowlist):
            if args.verbose:
                print("suppressed: %s" % f)
            continue
        survivors.append(f)

    # Stale allow entries are findings too: a suppression must die with
    # the code it excused.
    for rule, substring, used in allowlist:
        if not used:
            survivors.append(Finding(
                rule, os.path.relpath(ALLOWLIST_PATH, REPO), 0,
                "stale allow entry %r matches nothing" % substring))

    for f in survivors:
        print(f)
    if args.verbose and not survivors:
        print("mesh-lint: clean (%d rule(s))" % len(rules))
    return 1 if survivors else 0


if __name__ == "__main__":
    sys.exit(main())
