#!/usr/bin/env python3
"""Pretty-print (and schema-check) a Mesh telemetry trace dump.

A dump is the Chrome trace_event JSON written by MESH_TRACE=<path> or
mallctl("telemetry.dump"): a "traceEvents" array (loadable in
chrome://tracing / Perfetto) plus a "meshTelemetry" sidecar object
carrying the flight-recorder counters and the packed latency-histogram
buckets.  This tool renders the sidecar as a terminal snapshot:

    tools/mesh-top.py trace.json            # counters + p50/p99/p99.9
    tools/mesh-top.py --check trace.json    # schema validation only
    tools/mesh-top.py --check --require-events trace.json
                                            # + every event type present

--check exits nonzero on any schema violation (missing keys, wrong
bucket count, unknown event names), which is how CI validates dumps
beyond mere JSON well-formedness.

stdlib only; no third-party imports.
"""

import argparse
import json
import sys

SCHEMA_VERSION = 1
HIST_BUCKETS = 64

EVENT_TYPES = [
    "mesh_pass",
    "mesh_scan",
    "mesh_remap",
    "mesh_release",
    "bg_wake",
    "epoch_sync",
    "dirty_trip",
    "fault_retry",
    "fault_degrade",
    "fork_quiesce",
]

HIST_NAMES = [
    "mesh_pass",
    "mesh_scan",
    "mesh_remap",
    "mesh_release",
    "epoch_sync",
    "span_acquire",
    "punch_syscall",
    "remap_syscall",
]

COUNTER_KEYS = [
    "pid",
    "enabled",
    "ring_events",
    "rings_in_use",
    "events_recorded",
    "overflow_events",
]


def fail(msg):
    print("mesh-top: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def check_schema(doc, require_events):
    if not isinstance(doc.get("traceEvents"), list):
        fail("missing or non-array traceEvents")
    for ev in doc["traceEvents"]:
        name = ev.get("name")
        if name not in EVENT_TYPES:
            fail("unknown trace event name %r" % name)
        for key in ("ph", "pid", "tid", "ts"):
            if key not in ev:
                fail("trace event %r missing key %r" % (name, key))
    mt = doc.get("meshTelemetry")
    if not isinstance(mt, dict):
        fail("missing meshTelemetry sidecar object")
    if mt.get("schemaVersion") != SCHEMA_VERSION:
        fail("meshTelemetry.schemaVersion %r != %d"
             % (mt.get("schemaVersion"), SCHEMA_VERSION))
    for key in COUNTER_KEYS:
        if not isinstance(mt.get(key), int):
            fail("meshTelemetry.%s missing or non-integer" % key)
    events = mt.get("events")
    if not isinstance(events, dict):
        fail("meshTelemetry.events missing")
    for name in EVENT_TYPES:
        if not isinstance(events.get(name), int):
            fail("meshTelemetry.events.%s missing" % name)
    hists = mt.get("histograms")
    if not isinstance(hists, dict):
        fail("meshTelemetry.histograms missing")
    for name in HIST_NAMES:
        h = hists.get(name)
        if not isinstance(h, dict):
            fail("histogram %r missing" % name)
        buckets = h.get("buckets")
        if not isinstance(buckets, list) or len(buckets) != HIST_BUCKETS:
            fail("histogram %r: expected %d buckets" % (name, HIST_BUCKETS))
        if sum(buckets) != h.get("count"):
            fail("histogram %r: count %r != bucket sum %d"
                 % (name, h.get("count"), sum(buckets)))
    if require_events:
        missing = [n for n in EVENT_TYPES if events.get(n, 0) == 0]
        if missing:
            fail("required event types absent from trace: %s"
                 % ", ".join(missing))


def bucket_estimate(b):
    """Representative value for log2 bucket b: 0, or 1.5 * 2^(b-1)
    (the arithmetic midpoint of [2^(b-1), 2^b))."""
    if b == 0:
        return 0.0
    return 1.5 * (1 << (b - 1))


def quantile(buckets, q):
    total = sum(buckets)
    if total == 0:
        return 0.0
    target = q * total
    cum = 0
    for b, n in enumerate(buckets):
        cum += n
        if cum >= target:
            return bucket_estimate(b)
    return bucket_estimate(HIST_BUCKETS - 1)


def fmt_ns(ns):
    if ns >= 1e9:
        return "%.2fs" % (ns / 1e9)
    if ns >= 1e6:
        return "%.2fms" % (ns / 1e6)
    if ns >= 1e3:
        return "%.2fus" % (ns / 1e3)
    return "%.0fns" % ns


def render(doc):
    mt = doc["meshTelemetry"]
    print("mesh telemetry snapshot (pid %d)" % mt["pid"])
    print("  recording: %s   ring: %d events x %d rings in use"
          "   recorded: %d (overflow %d)"
          % ("on" if mt["enabled"] else "off", mt["ring_events"],
             mt["rings_in_use"], mt["events_recorded"],
             mt["overflow_events"]))
    print()
    print("  %-14s %10s" % ("event", "count"))
    for name in EVENT_TYPES:
        print("  %-14s %10d" % (name, mt["events"].get(name, 0)))
    print()
    print("  %-14s %10s %10s %10s %10s" % ("histogram", "count", "p50",
                                           "p99", "p99.9"))
    for name in HIST_NAMES:
        h = mt["histograms"][name]
        buckets = h["buckets"]
        print("  %-14s %10d %10s %10s %10s"
              % (name, h["count"],
                 fmt_ns(quantile(buckets, 0.50)),
                 fmt_ns(quantile(buckets, 0.99)),
                 fmt_ns(quantile(buckets, 0.999))))


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="telemetry dump (Chrome trace JSON)")
    ap.add_argument("--check", action="store_true",
                    help="validate the dump schema and exit")
    ap.add_argument("--require-events", action="store_true",
                    help="with --check: fail unless every event type "
                         "appears at least once")
    args = ap.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail("cannot load %s: %s" % (args.trace, e))

    check_schema(doc, args.require_events)
    if args.check:
        print("mesh-top: %s: schema OK (%d trace events)"
              % (args.trace, len(doc["traceEvents"])))
        return
    render(doc)


if __name__ == "__main__":
    main()
